// Package harness runs the paper's experiments: it wires workloads,
// cluster, protocol engines, schedules, and restarts together, repeats each
// configuration over seeds (the paper averages five repetitions), and
// formats the same rows and series the paper's tables and figures report.
package harness

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/group"
	"repro/internal/mlog"
	"repro/internal/mpi"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Mode selects the checkpoint protocol configuration, using the paper's
// notation.
type Mode string

// The paper's five configurations.
const (
	GP   Mode = "GP"   // trace-assisted group formation
	GP1  Mode = "GP1"  // one process per group (uncoordinated + logging)
	GP4  Mode = "GP4"  // four ad-hoc groups of sequential ranks
	NORM Mode = "NORM" // one global group (LAM/MPI coordinated)
	VCL  Mode = "VCL"  // MPICH-VCL (Chandy–Lamport, remote servers)
)

// Schedule describes when checkpoints are requested.
type Schedule struct {
	At       sim.Time // single checkpoint at this time (0 = none)
	Start    sim.Time // first periodic checkpoint (0 = Interval)
	Interval sim.Time // periodic interval (0 = no periodic checkpoints)
	MaxCount int      // cap on periodic checkpoints (0 = unlimited)
}

// Spec is one experiment run.
type Spec struct {
	WL      workload.Workload
	Mode    Mode
	Seed    int64
	Cluster cluster.Config // zero value = cluster.Gideon()
	Sched   Schedule

	// RemoteServers > 0 stores checkpoint images on shared remote
	// servers (the paper's Section 5.3 setup) instead of local disk.
	RemoteServers int
	ServerNIC     float64 // default: Fast Ethernet (12.5 MB/s)
	ServerDisk    float64 // default: 40 MB/s
	// RemoteAsync selects NFS-style write-behind semantics (the LAM/MPI
	// configuration in Section 5.3); VCL always streams synchronously.
	RemoteAsync bool

	// Trace attaches the full record tracer to the run. Memory scales
	// with message count; needed only for timeline/gap analyses and trace
	// files (Result.Trace).
	Trace bool

	// Comm attaches the streaming CommMatrix tracer to the run
	// (Result.Comm): pairwise bytes/counts aggregated online, memory
	// bounded by communicating pairs, usable at any scale. Trace and Comm
	// compose (a Tee observes for both).
	Comm bool

	// GroupMax bounds GP's trace-derived group size (0 = ⌈√n⌉).
	GroupMax int

	// Inspect attaches the invariant-oracle introspection: world message
	// statistics and per-pair byte flows (Result.MsgStats, Result.Flows),
	// mailbox depths at termination (Result.QueuedApp/QueuedCtrl), and
	// per-checkpoint cut records (Result.Cuts; group-based modes only).
	// Flows cost O(communicating pairs) at the end of the run; everything
	// else is a few integers.
	Inspect bool

	// Horizon caps virtual time (0 = unlimited). A run whose application
	// has not finished by the horizon fails with an error — the liveness
	// backstop the invariant oracle needs, because a dropped delivery
	// under periodic checkpointing starves a receiver forever without
	// ever draining the event queue (the checkpoint schedule keeps it
	// alive), which a deadlock detector alone cannot see.
	Horizon sim.Time

	// FailureProc, when non-nil, arms a stochastic failure injector on
	// the run: failures arrive as a renewal process, strike uniformly
	// drawn nodes, and each is evaluated at its instant under group vs.
	// global restart (Result.Failures). Injection is observational — it
	// never perturbs the simulation — and requires a group-based mode
	// (VCL keeps no per-rank sender logs to evaluate against).
	FailureProc failure.Process
	// FailureSeed seeds the failure process independently of the run
	// (0 derives a seed from Seed).
	FailureSeed int64
	// MaxFailures caps injected failures (0 = failure.DefaultMaxFailures).
	MaxFailures int
}

// Result collects everything a run produced.
type Result struct {
	Spec      Spec
	N         int
	Name      string // engine name actually used
	ExecTime  sim.Time
	Records   []ckpt.Record
	Snapshots []*ckpt.Snapshot
	Logs      []*mlog.Set
	Formation group.Formation
	Epochs    int
	Spans     []core.Span
	Trace     []trace.Record
	Comm      *trace.CommMatrix
	Events    uint64

	// Failures holds the injected-failure evaluations, in arrival order,
	// when the spec armed a FailureProc.
	Failures []failure.Outcome

	// Invariant-oracle introspection, populated when Spec.Inspect is set.
	MsgStats   mpi.Stats
	Flows      []mpi.PairFlow
	QueuedApp  int
	QueuedCtrl int
	Cuts       []core.Cut
}

func zeroIsGideon(c cluster.Config) cluster.Config {
	if c == (cluster.Config{}) {
		return cluster.Gideon()
	}
	return c
}

func (s *Spec) storageDefaults() {
	if s.ServerNIC == 0 {
		s.ServerNIC = 12.5e6
	}
	if s.ServerDisk == 0 {
		s.ServerDisk = 40e6
	}
}

// Run executes one experiment run to completion.
func Run(spec Spec) (*Result, error) {
	spec.Cluster = zeroIsGideon(spec.Cluster)
	spec.storageDefaults()
	wl := spec.WL
	n := wl.Procs()

	k := sim.NewKernel(spec.Seed)
	if spec.Horizon > 0 {
		k.SetHorizon(spec.Horizon)
	}
	c := cluster.New(k, n, spec.Cluster)
	w := mpi.NewWorld(k, c, n)

	var rec *trace.Recorder
	var comm *trace.CommMatrix
	if spec.Trace {
		rec = &trace.Recorder{}
	}
	if spec.Comm {
		comm = trace.NewCommMatrix()
	}
	switch {
	case rec != nil && comm != nil:
		w.Tracer = trace.Tee{rec, comm}
	case rec != nil:
		w.Tracer = rec
	case comm != nil:
		w.Tracer = comm
	}
	var store cluster.Storage = cluster.LocalDisk{}
	if spec.RemoteServers > 0 {
		rs := cluster.NewRemoteStore(c, spec.RemoteServers, spec.ServerNIC, spec.ServerDisk)
		if spec.RemoteAsync {
			store = cluster.NewAsyncRemote(rs, 0)
		} else {
			store = rs
		}
	}

	res := &Result{Spec: spec, N: n}

	schedule := func(at func(sim.Time, []int), periodic func(sim.Time, sim.Time, int)) {
		if spec.Sched.At > 0 {
			at(spec.Sched.At, nil)
		}
		if spec.Sched.Interval > 0 {
			start := spec.Sched.Start
			if start == 0 {
				start = spec.Sched.Interval
			}
			periodic(start, spec.Sched.Interval, spec.Sched.MaxCount)
		}
	}

	switch spec.Mode {
	case VCL:
		if spec.FailureProc != nil {
			return nil, fmt.Errorf("harness: %s/%s: failure injection requires a group-based mode", wl.Name(), spec.Mode)
		}
		v := core.NewVCL(w, store, wl.ImageBytes)
		schedule(
			func(t sim.Time, _ []int) { v.ScheduleAt(t) },
			v.SchedulePeriodic,
		)
		w.Launch(wl.Body)
		if err := k.Run(); err != nil {
			return nil, fmt.Errorf("harness: %s/%s: %w", wl.Name(), spec.Mode, err)
		}
		res.Name = v.Name()
		res.Records = v.Records()
		res.Snapshots = v.Snapshots()
		res.Formation = group.Global(n)
		res.Epochs = v.Epochs()
		res.Spans = v.EpochSpans()
	default:
		f, err := formationFor(spec)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig(f, wl.ImageBytes)
		cfg.Store = store
		if spec.Inspect {
			cfg.OnCut = func(c core.Cut) { res.Cuts = append(res.Cuts, c) }
		}
		e := core.NewEngine(w, cfg)
		schedule(e.ScheduleAt, e.SchedulePeriodic)
		var inj *failure.Injector
		if spec.FailureProc != nil {
			seed := spec.FailureSeed
			if seed == 0 {
				seed = spec.Seed ^ 0x5DEECE66D // decorrelate from the kernel stream
			}
			inj = failure.NewInjector(w, f, e, spec.FailureProc, seed, spec.MaxFailures)
			inj.Arm()
		}
		w.Launch(wl.Body)
		if err := k.Run(); err != nil {
			return nil, fmt.Errorf("harness: %s/%s: %w", wl.Name(), spec.Mode, err)
		}
		if inj != nil {
			res.Failures = inj.Outcomes()
		}
		res.Name = e.Name()
		res.Records = e.Records()
		res.Snapshots = e.Snapshots()
		res.Logs = e.LogSets()
		res.Formation = f
		res.Epochs = e.Epochs()
		res.Spans = e.EpochSpans()
	}

	if spec.Horizon > 0 {
		for _, r := range w.Ranks {
			if !r.Finished {
				return nil, fmt.Errorf("harness: %s/%s: rank %d still blocked at horizon %v — deadlock, livelock, or lost message",
					wl.Name(), spec.Mode, r.ID, spec.Horizon)
			}
		}
	}
	for _, r := range w.Ranks {
		if r.FinishTime > res.ExecTime {
			res.ExecTime = r.FinishTime
		}
	}
	if rec != nil {
		res.Trace = rec.Records
	}
	res.Comm = comm
	res.Events = k.Events()
	if spec.Inspect {
		res.MsgStats = w.Stats()
		res.Flows = w.PairFlows()
		res.QueuedApp, res.QueuedCtrl = w.Queued()
	}
	return res, nil
}

// Restart simulates a whole-application restart from the run's latest
// checkpoint (the paper's restart measurements).
func Restart(res *Result, seed int64) (core.RestartOutcome, error) {
	spec := res.Spec
	return core.SimulateRestart(core.RestartSpec{
		N:             res.N,
		ClusterCfg:    zeroIsGideon(spec.Cluster),
		Formation:     res.Formation,
		Snapshots:     res.Snapshots,
		Logs:          res.Logs,
		Seed:          seed,
		RemoteServers: spec.RemoteServers,
		ServerNIC:     spec.ServerNIC,
		ServerDisk:    spec.ServerDisk,
	})
}

// formationFor resolves the group formation for a group-based mode. GP runs
// (and caches) a tracing pass of the workload, then applies the paper's
// Algorithm 2 — the cmd/gbtrace → cmd/gbgroup pipeline in-process.
func formationFor(spec Spec) (group.Formation, error) {
	n := spec.WL.Procs()
	switch spec.Mode {
	case NORM:
		return group.Global(n), nil
	case GP1:
		return group.Singletons(n), nil
	case GP4:
		return group.Fixed(n, 4), nil
	case GP:
		return tracedFormation(spec)
	default:
		return group.Formation{}, fmt.Errorf("harness: unknown mode %q", spec.Mode)
	}
}

var formationCache runner.Memo[group.Formation]

// tracedFormation runs the workload once with the streaming CommMatrix
// tracer (no checkpoints) and feeds the matrix to Algorithm 2, so the
// tracing pass's memory is bounded by communicating pairs rather than
// message count. Results are cached per workload configuration; concurrent
// runs that need the same formation share one tracing pass, while distinct
// configurations trace in parallel.
func tracedFormation(spec Spec) (group.Formation, error) {
	n := spec.WL.Procs()
	max := spec.GroupMax
	if max <= 0 {
		max = group.DefaultMaxSize(n)
	}
	// The key must pin everything the tracing pass depends on: the
	// workload's full communication configuration (Name encodes each
	// skeleton's knobs) and the cluster calibration — scenario specs can
	// vary both, and two configurations must never share a formation.
	key := fmt.Sprintf("%s/n%d/G%d/%+v", spec.WL.Name(), n, max, zeroIsGideon(spec.Cluster))
	return formationCache.Get(key, func() (group.Formation, error) {
		k := sim.NewKernel(977)
		cfg := zeroIsGideon(spec.Cluster)
		cfg.JitterFrac = 0
		cfg.DaemonEvery = 0
		c := cluster.New(k, n, cfg)
		w := mpi.NewWorld(k, c, n)
		m := trace.NewCommMatrix()
		w.Tracer = m
		w.Launch(spec.WL.Body)
		if err := k.Run(); err != nil {
			return group.Formation{}, fmt.Errorf("harness: tracing pass for %s: %w", key, err)
		}
		f := group.FromMatrix(m, n, max)
		if err := f.Validate(); err != nil {
			return group.Formation{}, fmt.Errorf("harness: formation for %s: %w", key, err)
		}
		return f, nil
	})
}

// AggregateCoordination sums per-rank checkpoint durations excluding the
// image-write stage — the paper's Figure 1 metric ("coordination time is
// estimated by excluding the time spent in creating the actual checkpoint
// image").
func AggregateCoordination(records []ckpt.Record) sim.Time {
	var t sim.Time
	for _, r := range records {
		t += r.Duration() - r.Stages[ckpt.StageWrite]
	}
	return t
}

// MeanCheckpointTime averages per-rank per-epoch checkpoint durations — the
// paper's Figure 14 metric.
func MeanCheckpointTime(records []ckpt.Record) sim.Time {
	if len(records) == 0 {
		return 0
	}
	var t sim.Time
	for _, r := range records {
		t += r.Duration()
	}
	return t / sim.Time(len(records))
}
