package harness

import "testing"

func TestRegistryIDsUniqueAndResolvable(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Experiments()) {
		t.Fatalf("IDs() returned %d ids for %d experiments", len(ids), len(Experiments()))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate experiment id %q", id)
		}
		seen[id] = true
		e, ok := Lookup(id)
		if !ok {
			t.Errorf("Lookup(%q) missed a registered id", id)
			continue
		}
		if e.ID != id || e.Run == nil || e.Title == "" {
			t.Errorf("registry entry %q incomplete: %+v", id, e)
		}
	}
	if ids[0] != "fig1" {
		t.Errorf("registry order changed: first id %q, want fig1 (paper order)", ids[0])
	}
}

func TestLookupUnknownID(t *testing.T) {
	if _, ok := Lookup("fig99"); ok {
		t.Error("Lookup resolved an unregistered id")
	}
}
