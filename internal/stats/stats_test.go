package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if s := Std(xs); math.Abs(s-2.138) > 0.01 {
		t.Errorf("Std = %v, want ≈2.14 (sample)", s)
	}
	if Mean(nil) != 0 || Std(nil) != 0 || Std([]float64{1}) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v, %v", min, max)
	}
	if a, b := MinMax(nil); a != 0 || b != 0 {
		t.Error("empty MinMax should be 0,0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.Mean != 2 || s.N != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if got := s.String(); !strings.Contains(got, "±") {
		t.Errorf("String = %q, want mean±σ form", got)
	}
	one := Summarize([]float64{5})
	if got := one.String(); got != "5.00" {
		t.Errorf("single-sample String = %q", got)
	}
}

func TestMeanPropertyBounds(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		lo, hi := MinMax(clean)
		return m >= lo-1e-6 && m <= hi+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "Fig X", Columns: []string{"n", "GP", "NORM"}}
	tb.AddRow(16, 1.5, 3.25)
	tb.AddRow(128, Summarize([]float64{2, 2}), "n/a")
	tb.AddNote("checkpoint at t=%ds", 60)
	out := tb.String()
	for _, want := range []string{"== Fig X ==", "n", "GP", "NORM", "1.50", "3.25", "128", "note: checkpoint at t=60s"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, rule, 2 rows, note
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestTableTSV(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b"}}
	tb.AddRow(1, 2)
	got := tb.TSV()
	if got != "a\tb\n1\t2\n" {
		t.Errorf("TSV = %q", got)
	}
}
