// Package stats provides the small statistics and table-formatting helpers
// the experiment harness uses: mean/σ across repetitions (the paper repeats
// every experiment five times) and aligned text tables matching the rows and
// series the paper's figures report.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation of xs (0 if fewer than 2).
func Std(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// MinMax returns the extrema of xs (0,0 for an empty slice).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Summary is mean ± σ over repetitions.
type Summary struct {
	Mean, Std float64
	N         int
}

// Summarize folds repetitions into a Summary.
func Summarize(xs []float64) Summary {
	return Summary{Mean: Mean(xs), Std: Std(xs), N: len(xs)}
}

// String formats the summary as "mean±σ".
func (s Summary) String() string {
	if s.N <= 1 || s.Std == 0 {
		return fmt.Sprintf("%.2f", s.Mean)
	}
	return fmt.Sprintf("%.2f±%.2f", s.Mean, s.Std)
}

// Table is an aligned text table with a title — one per paper table/figure.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, stringifying each cell with %v (floats get %.2f).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case fmt.Stringer:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// TSV renders the table as tab-separated values for plotting.
func (t *Table) TSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Columns, "\t"))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, "\t"))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
