// HPL pipeline: reproduce the paper's end-to-end workflow (Figure 4) on
// High Performance Linpack with 32 processes (8×4 grid), entirely through
// the public gb facade:
//
//  1. run once with the communication tracer (mode None + CommObserver);
//
//  2. analyze the matrix with Algorithm 2 → group definition (Table 1);
//
//  3. checkpoint under those groups and compare against LAM/MPI-style
//     global coordination (NORM).
//
//     go run ./examples/hpl
package main

import (
	"context"
	"fmt"
	"log"

	"repro/gb"
	"repro/internal/ckpt"
)

func main() {
	ctx := context.Background()

	// N=5760 keeps this example under a second; the cmd/gbexp tool runs
	// the paper-scale N=20000 version.
	wl := gb.HPL(5760, 32)

	// Step 1: trace with the streaming matrix — formation needs only the
	// pair aggregates, so nothing per-message is buffered. Mode None runs
	// the bare application with no checkpoint engine.
	comm := gb.NewCommObserver()
	if _, err := gb.Run(ctx, wl,
		gb.WithMode(gb.None), gb.WithSeed(1),
		gb.WithObserver(comm)); err != nil {
		log.Fatal(err)
	}
	m := comm.Matrix()
	fmt.Printf("traced %s: %d send records\n", wl.Name(), m.Sends())

	// Step 2: Algorithm 2 with G=P=8.
	f := gb.GroupsFromComm(m, 32, wl.P)
	fmt.Println("group formation (paper Table 1):")
	for i, g := range f.Groups {
		fmt.Printf("  group %d: %v\n", i+1, g)
	}

	// Step 3: checkpoint under the groups vs globally. The traced
	// formation feeds straight back in through WithFormation.
	for _, setup := range []struct {
		name string
		opts []gb.Option
	}{
		{"GP (trace groups)", []gb.Option{gb.WithMode(gb.GP), gb.WithFormation(f)}},
		{"NORM (global)", []gb.Option{gb.WithMode(gb.NORM)}},
	} {
		opts := append([]gb.Option{
			gb.WithSeed(7),
			gb.WithSchedule(gb.Schedule{At: 4 * gb.Second}),
		}, setup.opts...)
		res, err := gb.Run(ctx, wl, opts...)
		if err != nil {
			log.Fatal(err)
		}
		agg := ckpt.AggregateCheckpointTime(res.Records)
		coord := agg
		for _, r := range res.Records {
			coord -= r.Stages[ckpt.StageWrite]
		}
		fmt.Printf("%-20s exec %-14v agg ckpt %-14v coordination %v\n",
			setup.name, res.ExecTime, agg, coord)
	}
}
