// HPL pipeline: reproduce the paper's end-to-end workflow (Figure 4) on
// High Performance Linpack with 32 processes (8×4 grid):
//
//  1. run once with the communication tracer;
//
//  2. analyze the trace with Algorithm 2 → group definition (Table 1);
//
//  3. checkpoint under those groups and compare against LAM/MPI-style
//     global coordination (NORM).
//
//     go run ./examples/hpl
package main

import (
	"fmt"
	"log"

	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// N=5760 keeps this example under a second; the cmd/gbexp tool runs
	// the paper-scale N=20000 version.
	wl := workload.NewHPL(5760, 32)

	// Step 1: trace with the streaming matrix — formation needs only the
	// pair aggregates, so nothing per-message is buffered.
	k := sim.NewKernel(1)
	c := cluster.New(k, 32, cluster.Gideon())
	w := mpi.NewWorld(k, c, 32)
	m := trace.NewCommMatrix()
	w.Tracer = m
	w.Launch(wl.Body)
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced %s: %d send records\n", wl.Name(), m.Sends())

	// Step 2: Algorithm 2 with G=P=8.
	f := group.FromMatrix(m, 32, wl.P)
	fmt.Println("group formation (paper Table 1):")
	for i, g := range f.Groups {
		fmt.Printf("  group %d: %v\n", i+1, g)
	}

	// Step 3: checkpoint under the groups vs globally.
	for _, setup := range []struct {
		name string
		form group.Formation
	}{
		{"GP (trace groups)", f},
		{"NORM (global)", group.Global(32)},
	} {
		k := sim.NewKernel(7)
		c := cluster.New(k, 32, cluster.Gideon())
		w := mpi.NewWorld(k, c, 32)
		e := core.NewEngine(w, core.DefaultConfig(setup.form, wl.ImageBytes))
		e.ScheduleAt(4*sim.Second, nil)
		w.Launch(wl.Body)
		if err := k.Run(); err != nil {
			log.Fatal(err)
		}
		var exec sim.Time
		for _, r := range w.Ranks {
			if r.FinishTime > exec {
				exec = r.FinishTime
			}
		}
		agg := ckpt.AggregateCheckpointTime(e.Records())
		coord := agg
		for _, r := range e.Records() {
			coord -= r.Stages[ckpt.StageWrite]
		}
		fmt.Printf("%-20s exec %-14v agg ckpt %-14v coordination %v\n",
			setup.name, exec, agg, coord)
	}
}
