// Failure scenario on NPB CG: a group of nodes fails mid-run. With
// group-based checkpointing only that group rolls back and out-of-group
// peers replay their logged messages; with global coordinated checkpointing
// every process rolls back. This example quantifies the paper's motivating
// argument — "recovery by a global restart would lose all the useful work
// done by normal processes".
//
// It also demonstrates a user-defined gb.Observer: the failure probe hooks
// the world before launch, composing with the built-in observers.
//
//	go run ./examples/cgfailure
package main

import (
	"context"
	"fmt"
	"log"

	"repro/gb"
	"repro/internal/failure"
)

// probeObserver arms a failure probe on the world before launch — a
// user-defined observer: anything with BeforeRun/AfterRun slots into
// gb.WithObserver alongside the built-ins.
type probeObserver struct {
	at    gb.Time
	probe failure.Probe
}

func (o *probeObserver) BeforeRun(env *gb.RunEnv) gb.Tracer {
	o.probe.Arm(env.World, o.at)
	return nil
}

func (o *probeObserver) AfterRun(*gb.Result) {}

func main() {
	ctx := context.Background()

	const n = 16
	wl := gb.CG(n)
	wl.NA, wl.NIter = 30000, 60 // shrunk for a fast example

	// Form groups from the streaming communication matrix (the CG grid
	// rows merge). Mode None runs the bare application for tracing.
	comm := gb.NewCommObserver()
	if _, err := gb.Run(ctx, wl,
		gb.WithMode(gb.None), gb.WithSeed(1),
		gb.WithObserver(comm)); err != nil {
		log.Fatal(err)
	}
	f := gb.GroupsFromComm(comm.Matrix(), n, 0)
	fmt.Printf("CG groups from trace: %v\n", f.Groups)

	ckptAt := 4 * gb.Second
	failAt := 12 * gb.Second
	for _, setup := range []struct {
		name string
		opts []gb.Option
	}{
		{"group-based (GP)", []gb.Option{gb.WithMode(gb.GP), gb.WithFormation(f)}},
		{"global (NORM)", []gb.Option{gb.WithMode(gb.NORM)}},
	} {
		pr := &probeObserver{at: failAt}
		opts := append([]gb.Option{
			gb.WithSeed(3),
			gb.WithSchedule(gb.Schedule{At: ckptAt}),
			gb.WithObserver(pr),
		}, setup.opts...)
		res, err := gb.Run(ctx, wl, opts...)
		if err != nil {
			log.Fatal(err)
		}
		out, err := failure.Evaluate(&pr.probe, res.Formation, res.Snapshots, res.Logs, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s — group %d (%v) fails at %v:\n",
			setup.name, out.FailedGroup, out.FailedRanks, failAt)
		fmt.Printf("  work lost (failed group rolls back):  %v\n", out.WorkLossGrp)
		fmt.Printf("  work lost if restart were global:     %v\n", out.WorkLossGlb)
		fmt.Printf("  work saved by group-based recovery:   %v\n", out.WorkSaved())
		fmt.Printf("  replay to the group: %d bytes over %d peer sessions\n",
			out.ReplayBytes, out.ReplayPairs)
	}
}
