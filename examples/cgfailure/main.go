// Failure scenario on NPB CG: a group of nodes fails mid-run. With
// group-based checkpointing only that group rolls back and out-of-group
// peers replay their logged messages; with global coordinated checkpointing
// every process rolls back. This example quantifies the paper's motivating
// argument — "recovery by a global restart would lose all the useful work
// done by normal processes".
//
//	go run ./examples/cgfailure
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/group"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	const n = 16
	wl := workload.CGClassC(n)
	wl.NA, wl.NIter = 30000, 60 // shrunk for a fast example

	// Form groups from the streaming communication matrix (the CG grid
	// rows merge).
	k0 := sim.NewKernel(1)
	c0 := cluster.New(k0, n, cluster.Gideon())
	w0 := mpi.NewWorld(k0, c0, n)
	m := trace.NewCommMatrix()
	w0.Tracer = m
	w0.Launch(wl.Body)
	if err := k0.Run(); err != nil {
		log.Fatal(err)
	}
	f := group.FromMatrix(m, n, group.DefaultMaxSize(n))
	fmt.Printf("CG groups from trace: %v\n", f.Groups)

	ckptAt := 4 * sim.Second
	failAt := 12 * sim.Second
	for _, setup := range []struct {
		name string
		form group.Formation
	}{
		{"group-based (GP)", f},
		{"global (NORM)", group.Global(n)},
	} {
		k := sim.NewKernel(3)
		c := cluster.New(k, n, cluster.Gideon())
		w := mpi.NewWorld(k, c, n)
		e := core.NewEngine(w, core.DefaultConfig(setup.form, wl.ImageBytes))
		e.ScheduleAt(ckptAt, nil)
		pr := &failure.Probe{}
		pr.Arm(w, failAt)
		w.Launch(wl.Body)
		if err := k.Run(); err != nil {
			log.Fatal(err)
		}
		out, err := failure.Evaluate(pr, setup.form, e.Snapshots(), e.LogSets(), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s — group %d (%v) fails at %v:\n",
			setup.name, out.FailedGroup, out.FailedRanks, failAt)
		fmt.Printf("  work lost (failed group rolls back):  %v\n", out.WorkLossGrp)
		fmt.Printf("  work lost if restart were global:     %v\n", out.WorkLossGlb)
		fmt.Printf("  work saved by group-based recovery:   %v\n", out.WorkSaved())
		fmt.Printf("  replay to the group: %d bytes over %d peer sessions\n",
			out.ReplayBytes, out.ReplayPairs)
	}
}
