// Quickstart: checkpoint a small message-passing application with the
// group-based protocol and restart it from the checkpoint, all through the
// public gb facade.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/gb"
	"repro/internal/ckpt"
)

func main() {
	ctx := context.Background()

	// A small ring workload: 8 ranks, heavy neighbour traffic, light
	// cross traffic — exactly the structure trace-driven grouping likes.
	wl := gb.Synthetic(8, 200)

	// Run it under GP: the harness traces the application once, forms
	// groups with the paper's Algorithm 2, installs the group-based
	// engine, and requests one checkpoint at t=5s.
	res, err := gb.Run(ctx, wl,
		gb.WithMode(gb.GP),
		gb.WithSeed(1),
		gb.WithSchedule(gb.Schedule{At: 5 * gb.Second}),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload:   %s\n", wl.Name())
	fmt.Printf("groups:     %v\n", res.Formation.Groups)
	fmt.Printf("execution:  %v (with one checkpoint)\n", res.ExecTime)
	fmt.Printf("agg ckpt:   %v across %d ranks\n",
		ckpt.AggregateCheckpointTime(res.Records), res.N)
	mean := ckpt.MeanBreakdown(res.Records)
	for s := ckpt.StageLock; s <= ckpt.StageFinalize; s++ {
		fmt.Printf("  %-13s %v\n", s, mean[s])
	}

	// Restart the whole application from that checkpoint: images load,
	// out-of-group peers exchange sent/received volumes, and logged
	// messages are replayed or skipped.
	out, err := gb.Restart(res, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restart:    agg %v, %d bytes replayed in %d sessions\n",
		out.AggregateRestartTime(), out.ResendBytes, out.ResendOps)
}
