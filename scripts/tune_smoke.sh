#!/bin/sh
# gbtune end-to-end smoke: search the shipped smoke-tune spec in-process and
# diff the report against its golden, then repeat through a live gbd daemon
# (POST /v1/tune over SSE) and demand the identical bytes — the
# library/service parity contract — plus a warm repeat proving the daemon's
# cell cache changes nothing. Extra arguments are passed to `go build`
# (e.g. -race). Run from the repository root; `make tune-smoke` does.
set -eu

tmp=$(mktemp -d)
daemon=""
cleanup() {
	[ -n "$daemon" ] && kill "$daemon" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

go build "$@" -o "$tmp/gbtune" ./cmd/gbtune
go build "$@" -o "$tmp/gbd" ./cmd/gbd

# In-process search, byte-exact against the golden report.
"$tmp/gbtune" -spec examples/tune/smoke-tune.json >"$tmp/report1"
diff -u examples/tune/smoke-tune.report.golden "$tmp/report1"

"$tmp/gbd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -workers 4 -drain 30s 2>"$tmp/log" &
daemon=$!

i=0
while [ ! -s "$tmp/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "tune-smoke: daemon never bound" >&2
		cat "$tmp/log" >&2
		exit 1
	fi
	sleep 0.1
done
url="http://$(cat "$tmp/addr")"

# The same search on the daemon must print the same bytes.
"$tmp/gbtune" -spec examples/tune/smoke-tune.json -url "$url" -tenant smoke >"$tmp/report2"
diff -u examples/tune/smoke-tune.report.golden "$tmp/report2"

# Warm repeat: every cell served from the daemon's cache, bytes unchanged.
"$tmp/gbtune" -spec examples/tune/smoke-tune.json -url "$url" -tenant smoke >"$tmp/report3"
cmp "$tmp/report2" "$tmp/report3"

kill -TERM "$daemon"
if ! wait "$daemon"; then
	echo "tune-smoke: daemon exited nonzero after SIGTERM" >&2
	cat "$tmp/log" >&2
	exit 1
fi
daemon=""
echo "tune smoke ok"
