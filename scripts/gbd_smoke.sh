#!/bin/sh
# gbd end-to-end smoke: start the daemon on a free port, stream the shipped
# modern-weibull scenario over SSE, diff the cells against their golden,
# prove cached responses are byte-identical, and drain cleanly on SIGTERM.
# Extra arguments are passed to `go build` (e.g. -race for the race-mode
# variant). Run from the repository root; `make gbd-smoke` does.
set -eu

tmp=$(mktemp -d)
daemon=""
cleanup() {
	[ -n "$daemon" ] && kill "$daemon" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

go build "$@" -o "$tmp/gbd" ./cmd/gbd

"$tmp/gbd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -workers 4 -drain 30s 2>"$tmp/log" &
daemon=$!

i=0
while [ ! -s "$tmp/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "gbd-smoke: daemon never bound" >&2
		cat "$tmp/log" >&2
		exit 1
	fi
	sleep 0.1
done
url="http://$(cat "$tmp/addr")"

# Cold sweep: every cell computed, streamed over SSE, printed in matrix
# order. Byte-exact against the golden — the determinism contract.
"$tmp/gbd" -post examples/scenarios/modern-weibull.json -url "$url" -tenant smoke >"$tmp/cells1"
diff -u examples/scenarios/modern-weibull.cells.golden "$tmp/cells1"

# Warm sweep: pure cache, and the bytes must not change.
"$tmp/gbd" -post examples/scenarios/modern-weibull.json -url "$url" -tenant smoke >"$tmp/cells2"
cmp "$tmp/cells1" "$tmp/cells2"

kill -TERM "$daemon"
if ! wait "$daemon"; then
	echo "gbd-smoke: daemon exited nonzero after SIGTERM" >&2
	cat "$tmp/log" >&2
	exit 1
fi
daemon=""
grep -q "drained" "$tmp/log" || {
	echo "gbd-smoke: no drain confirmation in the daemon log" >&2
	cat "$tmp/log" >&2
	exit 1
}
echo "gbd smoke ok"
